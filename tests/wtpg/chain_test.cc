#include "wtpg/chain.h"

#include <gtest/gtest.h>

#include "wtpg/wtpg.h"

namespace wtpgsched {
namespace {

Wtpg MakeChain(const std::vector<double>& w0,
               const std::vector<std::pair<double, double>>& edges) {
  // Nodes 1..n in path order; edges[i] = (wf, wb) between i+1 and i+2.
  Wtpg g;
  for (size_t i = 0; i < w0.size(); ++i) {
    g.AddNode(static_cast<TxnId>(i + 1), w0[i]);
  }
  for (size_t i = 0; i < edges.size(); ++i) {
    g.AddConflictEdge(static_cast<TxnId>(i + 1), static_cast<TxnId>(i + 2),
                      edges[i].first, edges[i].second);
  }
  return g;
}

TEST(ChainFormTest, EmptyAndSingletonAreChains) {
  Wtpg g;
  EXPECT_TRUE(IsChainForm(g));
  g.AddNode(1, 0.0);
  EXPECT_TRUE(IsChainForm(g));
}

TEST(ChainFormTest, PathIsChain) {
  Wtpg g = MakeChain({0, 0, 0, 0}, {{1, 1}, {1, 1}, {1, 1}});
  EXPECT_TRUE(IsChainForm(g));
}

TEST(ChainFormTest, StarIsNotChain) {
  Wtpg g;
  for (TxnId id : {1, 2, 3, 4}) g.AddNode(id, 0.0);
  g.AddConflictEdge(1, 2, 1, 1);
  g.AddConflictEdge(1, 3, 1, 1);
  g.AddConflictEdge(1, 4, 1, 1);  // Degree 3.
  EXPECT_FALSE(IsChainForm(g));
}

TEST(ChainFormTest, TriangleIsNotChain) {
  Wtpg g;
  for (TxnId id : {1, 2, 3}) g.AddNode(id, 0.0);
  g.AddConflictEdge(1, 2, 1, 1);
  g.AddConflictEdge(2, 3, 1, 1);
  g.AddConflictEdge(1, 3, 1, 1);
  EXPECT_FALSE(IsChainForm(g));
}

TEST(ChainFormTest, MultipleDisjointPaths) {
  Wtpg g;
  for (TxnId id : {1, 2, 3, 4, 5}) g.AddNode(id, 0.0);
  g.AddConflictEdge(1, 2, 1, 1);
  g.AddConflictEdge(3, 4, 1, 1);
  EXPECT_TRUE(IsChainForm(g));  // Two paths plus an isolated node.
}

TEST(CanExtendChainTest, NoConflictsAlwaysOk) {
  Wtpg g = MakeChain({0, 0}, {{1, 1}});
  EXPECT_TRUE(CanExtendChain(g, {}));
}

TEST(CanExtendChainTest, AttachToEndpoint) {
  Wtpg g = MakeChain({0, 0, 0}, {{1, 1}, {1, 1}});
  EXPECT_TRUE(CanExtendChain(g, {1}));   // Endpoint.
  EXPECT_TRUE(CanExtendChain(g, {3}));   // Endpoint.
  EXPECT_FALSE(CanExtendChain(g, {2}));  // Mid-chain: degree 2 already.
}

TEST(CanExtendChainTest, JoinTwoChains) {
  Wtpg g;
  for (TxnId id : {1, 2, 3, 4}) g.AddNode(id, 0.0);
  g.AddConflictEdge(1, 2, 1, 1);
  g.AddConflictEdge(3, 4, 1, 1);
  EXPECT_TRUE(CanExtendChain(g, {2, 3}));  // Bridges two paths.
}

TEST(CanExtendChainTest, ClosingCycleRejected) {
  Wtpg g = MakeChain({0, 0, 0}, {{1, 1}, {1, 1}});
  // Conflicting with both endpoints of the same path would close a cycle.
  EXPECT_FALSE(CanExtendChain(g, {1, 3}));
}

TEST(CanExtendChainTest, ThreeConflictsRejected) {
  Wtpg g;
  for (TxnId id : {1, 2, 3}) g.AddNode(id, 0.0);
  EXPECT_FALSE(CanExtendChain(g, {1, 2, 3}));
}

TEST(CanExtendChainTest, TwoIsolatedNodesOk) {
  Wtpg g;
  g.AddNode(1, 0.0);
  g.AddNode(2, 0.0);
  EXPECT_TRUE(CanExtendChain(g, {1, 2}));
}

TEST(ChainContainingTest, OrderedTraversal) {
  Wtpg g = MakeChain({0, 0, 0, 0}, {{1, 1}, {1, 1}, {1, 1}});
  for (TxnId id : {1, 2, 3, 4}) {
    const std::vector<TxnId> chain = ChainContaining(g, id);
    ASSERT_EQ(chain.size(), 4u);
    // Either 1..4 or 4..1; consecutive nodes must be adjacent.
    EXPECT_TRUE((chain.front() == 1 && chain.back() == 4) ||
                (chain.front() == 4 && chain.back() == 1));
  }
}

TEST(ChainContainingTest, Singleton) {
  Wtpg g;
  g.AddNode(9, 0.0);
  EXPECT_EQ(ChainContaining(g, 9), (std::vector<TxnId>{9}));
}

TEST(OptimizeChainTest, SingleNode) {
  Wtpg g;
  g.AddNode(1, 4.0);
  auto plan = OptimizeChain(g, {1});
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->critical_path, 4.0);
  EXPECT_TRUE(plan->forward.empty());
}

TEST(OptimizeChainTest, TwoNodesPicksCheaperDirection) {
  // w(1->2) = 10, w(2->1) = 1; all W0 = 0. Backward wins.
  Wtpg g = MakeChain({0, 0}, {{10, 1}});
  auto plan = OptimizeChain(g, {1, 2});
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->critical_path, 1.0);
  EXPECT_FALSE(plan->forward[0]);
  EXPECT_FALSE(plan->Orients(1, 2));
  EXPECT_TRUE(plan->Orients(2, 1));
}

TEST(OptimizeChainTest, W0EntersPathValue) {
  // Forward: W0(1) + wf = 5 + 1 = 6. Backward: W0(2) + wb = 1 + 1 = 2.
  Wtpg g = MakeChain({5, 1}, {{1, 1}});
  auto plan = OptimizeChain(g, {1, 2});
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->critical_path, 5.0);  // max(W0(1), 2).
  EXPECT_FALSE(plan->forward[0]);
}

TEST(OptimizeChainTest, RespectsFixedOrientation) {
  Wtpg g = MakeChain({0, 0}, {{10, 1}});
  ASSERT_TRUE(g.TryOrient(1, 2));  // Expensive direction already fixed.
  auto plan = OptimizeChain(g, {1, 2});
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->forward[0]);
  EXPECT_DOUBLE_EQ(plan->critical_path, 10.0);
}

TEST(OptimizeChainTest, AlternatingBeatsUniform) {
  // Three nodes; both uniform orientations accumulate both edges into one
  // run (cost 2); orienting outward from the middle gives two runs of 1.
  Wtpg g = MakeChain({0, 0, 0}, {{1, 1}, {1, 1}});
  auto plan = OptimizeChain(g, {1, 2, 3});
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->critical_path, 1.0);
  // Valley or peak at node 2: directions must differ.
  EXPECT_NE(plan->forward[0], plan->forward[1]);
}

TEST(OptimizeChainTest, MatchesWtpgCriticalPath) {
  // Applying the plan to the graph must yield exactly the critical path the
  // DP predicted.
  Wtpg g = MakeChain({3, 1, 4, 1}, {{2, 5}, {1, 1}, {7, 2}});
  auto plan = OptimizeChainOf(g, 2);
  ASSERT_TRUE(plan.ok());
  Wtpg applied = g;
  for (size_t i = 0; i + 1 < plan->nodes.size(); ++i) {
    const TxnId a = plan->nodes[i];
    const TxnId b = plan->nodes[i + 1];
    ASSERT_TRUE(plan->forward[i] ? applied.TryOrient(a, b)
                                 : applied.TryOrient(b, a));
  }
  EXPECT_DOUBLE_EQ(applied.CriticalPath(), plan->critical_path);
}

TEST(OptimizeChainTest, MatchesBruteForceSmall) {
  Wtpg g = MakeChain({3, 1, 4, 1, 5}, {{2, 5}, {1, 1}, {7, 2}, {3, 3}});
  auto plan = OptimizeChain(g, {1, 2, 3, 4, 5});
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->critical_path,
                   BruteForceOptimalCriticalPath(g, {1, 2, 3, 4, 5}));
}

TEST(OptimizeChainTest, MatchesBruteForceWithFixedEdges) {
  Wtpg g = MakeChain({1, 2, 3, 4}, {{4, 1}, {2, 2}, {1, 6}});
  ASSERT_TRUE(g.TryOrient(2, 3));
  auto plan = OptimizeChain(g, {1, 2, 3, 4});
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->Orients(2, 3));
  EXPECT_DOUBLE_EQ(plan->critical_path,
                   BruteForceOptimalCriticalPath(g, {1, 2, 3, 4}));
}

TEST(ChainPlanTest, OrientsSymmetry) {
  ChainPlan plan;
  plan.nodes = {5, 9, 2};
  plan.forward = {true, false};
  EXPECT_TRUE(plan.Orients(5, 9));
  EXPECT_FALSE(plan.Orients(9, 5));
  EXPECT_FALSE(plan.Orients(9, 2));
  EXPECT_TRUE(plan.Orients(2, 9));
}

}  // namespace
}  // namespace wtpgsched
