#include "util/status.h"

#include <gtest/gtest.h>

namespace wtpgsched {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) { EXPECT_TRUE(Status::Ok().ok()); }

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad dd");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad dd");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dd");
}

TEST(StatusTest, AllErrorFactories) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, ArrowOperator) {
  struct Payload {
    int x;
  };
  StatusOr<Payload> v = Payload{7};
  EXPECT_EQ(v->x, 7);
}

}  // namespace
}  // namespace wtpgsched
