#include "util/random.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace wtpgsched {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformIntRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= (v == 3);
    saw_hi |= (v == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(13);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, UniformIntUnbiasedMean) {
  Rng rng(17);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.UniformInt(0, 9));
  EXPECT_NEAR(sum / n, 4.5, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(19);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(RngTest, ExponentialNonNegative) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.Exponential(1.0), 0.0);
}

TEST(RngTest, NormalMoments) {
  Rng rng(29);
  const int n = 200000;
  double sum = 0;
  double sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(10.0, 3.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(RngTest, ForkIndependentStreams) {
  Rng parent(31);
  Rng child = parent.Fork();
  // The child stream should not replay the parent's outputs.
  Rng parent_copy(31);
  parent_copy.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.NextUint64() == parent.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformRealRange) {
  Rng rng(37);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.UniformReal(-2.0, 5.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 5.0);
  }
}

}  // namespace
}  // namespace wtpgsched
