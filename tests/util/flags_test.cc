#include "util/flags.h"

#include <gtest/gtest.h>

namespace wtpgsched {
namespace {

FlagParser MakeParser() {
  FlagParser flags;
  flags.AddString("name", "default", "a string");
  flags.AddInt("count", 7, "an int");
  flags.AddDouble("rate", 1.5, "a double");
  flags.AddBool("verbose", false, "a bool");
  return flags;
}

Status ParseArgs(FlagParser* flags, std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return flags->Parse(static_cast<int>(args.size()), args.data());
}

TEST(FlagParserTest, DefaultsWithoutArgs) {
  FlagParser flags = MakeParser();
  ASSERT_TRUE(ParseArgs(&flags, {}).ok());
  EXPECT_EQ(flags.GetString("name"), "default");
  EXPECT_EQ(flags.GetInt("count"), 7);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate"), 1.5);
  EXPECT_FALSE(flags.GetBool("verbose"));
}

TEST(FlagParserTest, EqualsSyntax) {
  FlagParser flags = MakeParser();
  ASSERT_TRUE(ParseArgs(&flags, {"--name=abc", "--count=42", "--rate=0.25",
                                 "--verbose=true"})
                  .ok());
  EXPECT_EQ(flags.GetString("name"), "abc");
  EXPECT_EQ(flags.GetInt("count"), 42);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate"), 0.25);
  EXPECT_TRUE(flags.GetBool("verbose"));
}

TEST(FlagParserTest, SpaceSyntax) {
  FlagParser flags = MakeParser();
  ASSERT_TRUE(ParseArgs(&flags, {"--name", "xyz", "--count", "-3"}).ok());
  EXPECT_EQ(flags.GetString("name"), "xyz");
  EXPECT_EQ(flags.GetInt("count"), -3);
}

TEST(FlagParserTest, BareBoolFlag) {
  FlagParser flags = MakeParser();
  ASSERT_TRUE(ParseArgs(&flags, {"--verbose"}).ok());
  EXPECT_TRUE(flags.GetBool("verbose"));
}

TEST(FlagParserTest, BoolFalse) {
  FlagParser flags = MakeParser();
  ASSERT_TRUE(ParseArgs(&flags, {"--verbose=false"}).ok());
  EXPECT_FALSE(flags.GetBool("verbose"));
}

TEST(FlagParserTest, PositionalArguments) {
  FlagParser flags = MakeParser();
  ASSERT_TRUE(ParseArgs(&flags, {"one", "--count=1", "two"}).ok());
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"one", "two"}));
}

TEST(FlagParserTest, UnknownFlagFails) {
  FlagParser flags = MakeParser();
  EXPECT_FALSE(ParseArgs(&flags, {"--bogus=1"}).ok());
}

TEST(FlagParserTest, BadIntFails) {
  FlagParser flags = MakeParser();
  EXPECT_FALSE(ParseArgs(&flags, {"--count=abc"}).ok());
  EXPECT_FALSE(ParseArgs(&flags, {"--count=12x"}).ok());
}

TEST(FlagParserTest, BadDoubleFails) {
  FlagParser flags = MakeParser();
  EXPECT_FALSE(ParseArgs(&flags, {"--rate=fast"}).ok());
}

TEST(FlagParserTest, BadBoolFails) {
  FlagParser flags = MakeParser();
  EXPECT_FALSE(ParseArgs(&flags, {"--verbose=maybe"}).ok());
}

TEST(FlagParserTest, MissingValueFails) {
  FlagParser flags = MakeParser();
  EXPECT_FALSE(ParseArgs(&flags, {"--count"}).ok());
}

TEST(FlagParserTest, HelpListsFlags) {
  FlagParser flags = MakeParser();
  const std::string help = flags.Help();
  EXPECT_NE(help.find("--name"), std::string::npos);
  EXPECT_NE(help.find("--count"), std::string::npos);
  EXPECT_NE(help.find("default: 7"), std::string::npos);
}

}  // namespace
}  // namespace wtpgsched
