#include "util/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace wtpgsched {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(CsvEscapeTest, PlainFieldUnchanged) {
  EXPECT_EQ(CsvWriter::Escape("abc"), "abc");
}

TEST(CsvEscapeTest, CommaQuoted) {
  EXPECT_EQ(CsvWriter::Escape("a,b"), "\"a,b\"");
}

TEST(CsvEscapeTest, QuoteDoubled) {
  EXPECT_EQ(CsvWriter::Escape("a\"b"), "\"a\"\"b\"");
}

TEST(CsvEscapeTest, NewlineQuoted) {
  EXPECT_EQ(CsvWriter::Escape("a\nb"), "\"a\nb\"");
}

TEST(CsvWriterTest, WritesRows) {
  const std::string path = testing::TempDir() + "/csv_test.csv";
  CsvWriter w;
  ASSERT_TRUE(w.Open(path).ok());
  w.WriteHeader({"x", "y"});
  w.WriteRow({"1", "2"});
  w.WriteRow({"a,b", "c"});
  w.Close();
  EXPECT_EQ(ReadAll(path), "x,y\n1,2\n\"a,b\",c\n");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, OpenFailsOnBadPath) {
  CsvWriter w;
  EXPECT_FALSE(w.Open("/nonexistent-dir-xyz/file.csv").ok());
  EXPECT_FALSE(w.is_open());
}

}  // namespace
}  // namespace wtpgsched
