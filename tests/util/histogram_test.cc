#include "util/histogram.h"

#include <cmath>

#include <gtest/gtest.h>

namespace wtpgsched {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Median(), 0.0);
  EXPECT_EQ(h.StdDev(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
}

TEST(HistogramTest, SingleSample) {
  Histogram h;
  h.Add(5.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.Mean(), 5.0);
  EXPECT_EQ(h.Median(), 5.0);
  EXPECT_EQ(h.Percentile(0), 5.0);
  EXPECT_EQ(h.Percentile(100), 5.0);
}

TEST(HistogramTest, MeanAndBounds) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0}) h.Add(v);
  EXPECT_DOUBLE_EQ(h.Mean(), 2.5);
  EXPECT_EQ(h.min(), 1.0);
  EXPECT_EQ(h.max(), 4.0);
  EXPECT_DOUBLE_EQ(h.sum(), 10.0);
}

TEST(HistogramTest, MedianInterpolates) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0}) h.Add(v);
  EXPECT_DOUBLE_EQ(h.Median(), 2.5);
}

TEST(HistogramTest, PercentileExtremes) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(h.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 100.0);
  EXPECT_NEAR(h.Percentile(50), 50.5, 0.01);
  EXPECT_NEAR(h.Percentile(95), 95.05, 0.1);
}

TEST(HistogramTest, UnsortedInsertionOrder) {
  Histogram h;
  for (double v : {9.0, 1.0, 5.0, 3.0, 7.0}) h.Add(v);
  EXPECT_EQ(h.min(), 1.0);
  EXPECT_EQ(h.max(), 9.0);
  EXPECT_DOUBLE_EQ(h.Median(), 5.0);
}

TEST(HistogramTest, StdDev) {
  Histogram h;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) h.Add(v);
  EXPECT_NEAR(h.StdDev(), 2.0, 1e-9);
}

TEST(HistogramTest, StdDevStableAtLargeOffset) {
  // Catastrophic-cancellation regression: with the old sum-of-squares
  // formula, E[x^2] - mean^2 at offset 1e9 loses all 16 digits that the
  // +-1 spread lives in (it returned 0 or even a negative operand to
  // sqrt). The two-pass form keeps full precision.
  Histogram h;
  const double offset = 1e9;
  for (double v : {offset - 1.0, offset, offset + 1.0}) h.Add(v);
  const double expected = std::sqrt(2.0 / 3.0);
  EXPECT_NEAR(h.StdDev(), expected, 1e-9);
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.Add(1.0);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, AddAfterPercentileQuery) {
  Histogram h;
  h.Add(1.0);
  EXPECT_EQ(h.Median(), 1.0);
  h.Add(3.0);  // Invalidates sorted state; must re-sort lazily.
  EXPECT_DOUBLE_EQ(h.Median(), 2.0);
}

}  // namespace
}  // namespace wtpgsched
