#include "util/thread_pool.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <vector>

#include <gtest/gtest.h>

namespace wtpgsched {
namespace {

TEST(ThreadPoolTest, RunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.Wait();  // Must not hang.
  EXPECT_EQ(pool.num_threads(), 2);
}

TEST(ThreadPoolTest, ClampsToOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<int> count{0};
  pool.Submit([&count] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    // No Wait(): the destructor must still run everything already queued.
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, TasksOverlapAcrossWorkers) {
  // Two tasks that each wait for the other to start can only finish if they
  // run on different workers.
  ThreadPool pool(2);
  std::mutex mu;
  std::condition_variable cv;
  int started = 0;
  auto task = [&] {
    std::unique_lock<std::mutex> lock(mu);
    ++started;
    cv.notify_all();
    cv.wait(lock, [&] { return started == 2; });
  };
  pool.Submit(task);
  pool.Submit(task);
  pool.Wait();
  EXPECT_EQ(started, 2);
}

TEST(ThreadPoolTest, HardwareThreadsPositive) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1);
}

TEST(ParallelForTest, CoversEveryIndexOnce) {
  for (int jobs : {1, 3, 8}) {
    std::vector<std::atomic<int>> hits(57);
    ParallelFor(jobs, hits.size(), [&hits](size_t i) { ++hits[i]; });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "jobs=" << jobs << " i=" << i;
    }
  }
}

TEST(ParallelForTest, SerialWhenSingleJobPreservesOrder) {
  std::vector<size_t> order;
  ParallelFor(1, 5, [&order](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, ZeroIterations) {
  ParallelFor(4, 0, [](size_t) { FAIL() << "body must not run"; });
}

}  // namespace
}  // namespace wtpgsched
