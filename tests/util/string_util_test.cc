#include "util/string_util.h"

#include <gtest/gtest.h>

namespace wtpgsched {
namespace {

TEST(StrCatTest, ConcatenatesMixedTypes) {
  EXPECT_EQ(StrCat("T", 42, " x=", 1.5), "T42 x=1.5");
}

TEST(StrCatTest, Empty) { EXPECT_EQ(StrCat(), ""); }

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(JoinTest, SingleAndEmpty) {
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(FormatTest, PrintfStyle) {
  EXPECT_EQ(Format("%d-%s-%.2f", 3, "x", 1.5), "3-x-1.50");
}

TEST(FormatTest, EmptyResult) { EXPECT_EQ(Format("%s", ""), ""); }

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.0, 0), "3");
}

TEST(PadTest, PadLeft) {
  EXPECT_EQ(PadLeft("ab", 5), "   ab");
  EXPECT_EQ(PadLeft("abcdef", 3), "abcdef");
}

TEST(PadTest, PadRight) {
  EXPECT_EQ(PadRight("ab", 5), "ab   ");
  EXPECT_EQ(PadRight("abcdef", 3), "abcdef");
}

}  // namespace
}  // namespace wtpgsched
