#include "util/string_util.h"

#include <gtest/gtest.h>

namespace wtpgsched {
namespace {

TEST(StrCatTest, ConcatenatesMixedTypes) {
  EXPECT_EQ(StrCat("T", 42, " x=", 1.5), "T42 x=1.5");
}

TEST(StrCatTest, Empty) { EXPECT_EQ(StrCat(), ""); }

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(JoinTest, SingleAndEmpty) {
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(FormatTest, PrintfStyle) {
  EXPECT_EQ(Format("%d-%s-%.2f", 3, "x", 1.5), "3-x-1.50");
}

TEST(FormatTest, EmptyResult) { EXPECT_EQ(Format("%s", ""), ""); }

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.0, 0), "3");
}

TEST(PadTest, PadLeft) {
  EXPECT_EQ(PadLeft("ab", 5), "   ab");
  EXPECT_EQ(PadLeft("abcdef", 3), "abcdef");
}

TEST(PadTest, PadRight) {
  EXPECT_EQ(PadRight("ab", 5), "ab   ");
  EXPECT_EQ(PadRight("abcdef", 3), "abcdef");
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("a,b,", ','), (std::vector<std::string>{"a", "b", ""}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("solo", ','), (std::vector<std::string>{"solo"}));
}

TEST(ParseDoubleTest, AcceptsNumbersRejectsGarbage) {
  double v = -1.0;
  EXPECT_TRUE(ParseDouble("0.25", &v));
  EXPECT_DOUBLE_EQ(v, 0.25);
  EXPECT_TRUE(ParseDouble(" 1e3 ", &v));
  EXPECT_DOUBLE_EQ(v, 1000.0);
  EXPECT_TRUE(ParseDouble("-4", &v));
  EXPECT_DOUBLE_EQ(v, -4.0);

  v = 99.0;
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));      // atof would return 1.5.
  EXPECT_FALSE(ParseDouble("0.2;0.4", &v));   // atof would return 0.2.
  EXPECT_FALSE(ParseDouble("1e999999", &v));  // Overflow.
  EXPECT_DOUBLE_EQ(v, 99.0) << "failed parse must not write";
}

TEST(ParseInt64Test, AcceptsIntegersRejectsGarbage) {
  int64_t v = -1;
  EXPECT_TRUE(ParseInt64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64(" -7 ", &v));
  EXPECT_EQ(v, -7);

  v = 99;
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("4.5", &v));
  EXPECT_FALSE(ParseInt64("12abc", &v));  // atoi would return 12.
  EXPECT_FALSE(ParseInt64("999999999999999999999", &v));  // Overflow.
  EXPECT_EQ(v, 99);
}

TEST(ParseDoubleListTest, ParsesAndReportsOffendingToken) {
  std::vector<double> out;
  ASSERT_TRUE(ParseDoubleList("0.2,0.4,1.2", ',', &out).ok());
  EXPECT_EQ(out, (std::vector<double>{0.2, 0.4, 1.2}));

  // Stray separators are tolerated (trailing comma, double comma).
  ASSERT_TRUE(ParseDoubleList("0.2,,0.4,", ',', &out).ok());
  EXPECT_EQ(out, (std::vector<double>{0.2, 0.4}));

  // The paper-sweep footgun: a semicolon-separated list must be an error,
  // not a silent single-point sweep.
  const Status bad = ParseDoubleList("0.2;0.4", ',', &out);
  EXPECT_FALSE(bad.ok());
  EXPECT_NE(bad.ToString().find("0.2;0.4"), std::string::npos);

  const Status garbage = ParseDoubleList("0.2,fast,0.4", ',', &out);
  EXPECT_FALSE(garbage.ok());
  EXPECT_NE(garbage.ToString().find("fast"), std::string::npos);
}

}  // namespace
}  // namespace wtpgsched
