#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace wtpgsched {
namespace {

// Exact Zipf probabilities for a small universe (normalizing over all
// ranks), used as the oracle for the frequency tests.
std::vector<double> ExactProbabilities(int64_t n, double theta) {
  std::vector<double> p(static_cast<size_t>(n));
  double norm = 0.0;
  for (int64_t k = 0; k < n; ++k) {
    p[static_cast<size_t>(k)] =
        std::pow(static_cast<double>(k + 1), -theta);
    norm += p[static_cast<size_t>(k)];
  }
  for (double& v : p) v /= norm;
  return p;
}

TEST(ZipfSamplerTest, ThetaZeroIsExactlyUniformInt) {
  // theta == 0 must take the UniformInt path bit-for-bit: a Zipf-capable
  // pattern variable at theta 0 draws the same file sequence as the
  // pre-Zipf generator.
  ZipfSampler sampler(1000, 0.0);
  Rng a(42), b(42);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(sampler.Sample(&a), b.UniformInt(0, 999));
  }
}

TEST(ZipfSamplerTest, SingleElementAlwaysZero) {
  ZipfSampler sampler(1, 1.2);
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.Sample(&rng), 0);
}

TEST(ZipfSamplerTest, SamplesStayInRange) {
  for (double theta : {0.2, 0.9, 1.0, 1.5}) {
    for (int64_t n : {2ll, 5ll, 100ll, 100'000ll}) {
      ZipfSampler sampler(n, theta);
      Rng rng(static_cast<uint64_t>(n) * 31 + 1);
      for (int i = 0; i < 1000; ++i) {
        const int64_t k = sampler.Sample(&rng);
        ASSERT_GE(k, 0) << "theta=" << theta << " n=" << n;
        ASSERT_LT(k, n) << "theta=" << theta << " n=" << n;
      }
    }
  }
}

TEST(ZipfSamplerTest, Deterministic) {
  ZipfSampler sampler(10'000, 0.9);
  Rng a(123), b(123);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(sampler.Sample(&a), sampler.Sample(&b));
  }
}

TEST(ZipfSamplerTest, FrequenciesMatchExactDistribution) {
  // Chi-square-style check against the closed-form probabilities on a
  // small universe. 200k draws put each bin's relative error well under
  // the 10% gate (rank 9 at theta 0.8 still gets ~8600 expected hits).
  const int64_t n = 10;
  for (double theta : {0.5, 0.8, 1.0}) {
    ZipfSampler sampler(n, theta);
    Rng rng(99);
    const int draws = 200'000;
    std::vector<int> counts(static_cast<size_t>(n), 0);
    for (int i = 0; i < draws; ++i) {
      counts[static_cast<size_t>(sampler.Sample(&rng))]++;
    }
    const std::vector<double> p = ExactProbabilities(n, theta);
    for (int64_t k = 0; k < n; ++k) {
      const double observed =
          static_cast<double>(counts[static_cast<size_t>(k)]) / draws;
      EXPECT_NEAR(observed, p[static_cast<size_t>(k)],
                  0.1 * p[static_cast<size_t>(k)] + 1e-4)
          << "theta=" << theta << " rank=" << k;
    }
  }
}

TEST(ZipfSamplerTest, ThetaOneLimitIsSeamless) {
  // The expm1/log1p helpers make theta -> 1 continuous: frequencies just
  // below, at, and just above 1 should be close on the hottest rank.
  const int64_t n = 100;
  auto head_share = [&](double theta) {
    ZipfSampler sampler(n, theta);
    Rng rng(5);
    int head = 0;
    const int draws = 50'000;
    for (int i = 0; i < draws; ++i) {
      if (sampler.Sample(&rng) == 0) head++;
    }
    return static_cast<double>(head) / draws;
  };
  const double below = head_share(0.999999);
  const double at = head_share(1.0);
  const double above = head_share(1.000001);
  EXPECT_NEAR(below, at, 0.01);
  EXPECT_NEAR(above, at, 0.01);
}

TEST(ZipfSamplerTest, TenMillionElementUniverse) {
  // The open-world tier's headline scale: sampling must stay O(1) state
  // and produce a skewed head (rank 0 carries ~6% of the mass at
  // theta 0.9 over 10M elements, vs 1e-7 uniformly).
  const int64_t n = 10'000'000;
  ZipfSampler sampler(n, 0.9);
  Rng rng(17);
  const int draws = 20'000;
  int head = 0;   // rank 0
  int tail = 0;   // beyond the first million
  for (int i = 0; i < draws; ++i) {
    const int64_t k = sampler.Sample(&rng);
    ASSERT_GE(k, 0);
    ASSERT_LT(k, n);
    if (k == 0) head++;
    if (k >= 1'000'000) tail++;
  }
  EXPECT_GT(head, draws / 100);  // Far beyond uniform's 1e-7 share.
  EXPECT_GT(tail, 0);            // But the tail is still reachable.
}

}  // namespace
}  // namespace wtpgsched
