#include "util/json_writer.h"

#include <gtest/gtest.h>

#include "metrics/stats.h"

namespace wtpgsched {
namespace {

TEST(JsonWriterTest, EmptyObject) {
  EXPECT_EQ(JsonWriter().ToString(), "{}");
}

TEST(JsonWriterTest, MixedTypesInOrder) {
  JsonWriter json;
  json.Add("s", "text").Add("i", int64_t{-3}).Add("d", 1.5).Add("b", true);
  EXPECT_EQ(json.ToString(), "{\"s\":\"text\",\"i\":-3,\"d\":1.5,\"b\":true}");
}

TEST(JsonWriterTest, EscapesSpecials) {
  JsonWriter json;
  json.Add("k", "a\"b\\c\nd");
  EXPECT_EQ(json.ToString(), "{\"k\":\"a\\\"b\\\\c\\nd\"}");
}

TEST(JsonWriterTest, EscapesControlCharacters) {
  EXPECT_EQ(JsonWriter::Escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(JsonWriter::Escape("\t"), "\\t");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter json;
  json.Add("inf", std::numeric_limits<double>::infinity());
  EXPECT_EQ(json.ToString(), "{\"inf\":null}");
}

TEST(JsonWriterTest, RawFragments) {
  JsonWriter inner;
  inner.Add("x", 1);
  JsonWriter outer;
  outer.AddRaw("nested", inner.ToString());
  EXPECT_EQ(outer.ToString(), "{\"nested\":{\"x\":1}}");
}

TEST(JsonWriterTest, UnsignedValues) {
  JsonWriter json;
  json.Add("u", uint64_t{18446744073709551615ULL});
  EXPECT_EQ(json.ToString(), "{\"u\":18446744073709551615}");
}

TEST(RunStatsJsonTest, ContainsAllFields) {
  RunStats stats;
  stats.arrivals = 10;
  stats.completions = 9;
  stats.mean_response_s = 7.25;
  stats.throughput_tps = 0.5;
  const std::string json = stats.ToJson();
  EXPECT_NE(json.find("\"arrivals\":10"), std::string::npos);
  EXPECT_NE(json.find("\"completions\":9"), std::string::npos);
  EXPECT_NE(json.find("\"mean_response_s\":7.25"), std::string::npos);
  EXPECT_NE(json.find("\"throughput_tps\":0.5"), std::string::npos);
  EXPECT_NE(json.find("\"in_flight_at_end\":0"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

}  // namespace
}  // namespace wtpgsched
